// Command atpgvet is the repository's custom static-analysis suite: five
// analyzers that mechanically enforce the generation engine's sharp-edged
// invariants (trail frame pairing, scratch-slice aliasing, deterministic
// merge, zero-alloc hot paths, cancelable consume loops).  See
// docs/ARCHITECTURE.md, "Enforced invariants".
//
// It runs in two modes:
//
//	atpgvet ./...                         # standalone, like staticcheck
//	go vet -vettool=$(which atpgvet) ./... # as a go vet tool
//
// Suppress a finding with a trailing comment carrying a mandatory reason:
//
//	//atpgvet:ignore <analyzer> -- <reason>
//
// The suite is built on the stdlib-only kernel in tools/atpgvet/analysis;
// it has no module dependencies, so there is no golang.org/x/tools version
// to manage — the analyzers port to the x/tools multichecker by swapping
// that import if the dependency is ever introduced (see analysis package
// doc).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/analyzers/ctxloop"
	"repro/tools/atpgvet/analyzers/detmerge"
	"repro/tools/atpgvet/analyzers/hotalloc"
	"repro/tools/atpgvet/analyzers/scratchalias"
	"repro/tools/atpgvet/analyzers/trailpair"
	"repro/tools/atpgvet/driver"
)

// version participates in go vet's content-addressed action cache: bump it
// whenever analyzer behavior changes, or stale results may be replayed.
const version = "v1.0.0"

// Analyzers is the multichecker's analyzer set.
var Analyzers = []*analysis.Analyzer{
	trailpair.Analyzer,
	scratchalias.Analyzer,
	detmerge.Analyzer,
	hotalloc.Analyzer,
	ctxloop.Analyzer,
}

func main() {
	vFlag := flag.String("V", "", "print version and exit (the go vet tool protocol passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON (go vet tool protocol)")
	jsonFlag := flag.Bool("json", false, "accepted for go vet compatibility (ignored)")
	flag.Usage = usage
	flag.Parse()
	_ = jsonFlag

	switch {
	case *vFlag != "":
		// The go command hashes this line into its build cache key, so it
		// must change whenever the tool changes: include a content hash of
		// the executable, like x/tools' unitchecker does.
		fmt.Printf("atpgvet version %s sum %s\n", version, selfHash())
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet -vettool mode: one JSON config file per package.
		os.Exit(driver.RunUnitchecker(args[0], Analyzers))
	}

	// Standalone mode.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := driver.Load(".", args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atpgvet: %v\n", err)
		os.Exit(1)
	}
	findings := driver.Run(pkgs, Analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selfHash returns a short content hash of the running executable, so that
// rebuilding the tool invalidates go vet's cached results.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: atpgvet [packages]\n\nAnalyzers:\n")
	for _, a := range Analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppressions: %s <analyzer> -- <reason>\n", driver.IgnorePrefix)
	flag.PrintDefaults()
}
