// Package analysis is the minimal static-analysis kernel atpgvet is built
// on.  It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// holds a name, a doc string and a Run function over a Pass; a Pass gives
// the Run function one type-checked package and a Report sink — but is
// implemented entirely on the standard library (go/ast, go/types), because
// this repository builds with zero external module dependencies.  Should the
// x/tools dependency ever become available, the analyzers port to the real
// framework by swapping this import; the API subset is intentionally
// identical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //atpgvet:ignore <name> suppression directives.
	Name string
	// Doc is the one-paragraph description shown by atpgvet -help.
	Doc string
	// Run applies the analyzer to one package.  Diagnostics go through
	// pass.Report; the returned value is unused (kept for x/tools API
	// compatibility).
	Run func(*Pass) (any, error)
}

// Pass holds the inputs of one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic.  It is safe to call multiple times per
	// node; the driver deduplicates identical (position, message) pairs.
	Report func(Diagnostic)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
