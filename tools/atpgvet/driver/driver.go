// Package driver loads, type-checks and analyzes Go packages for atpgvet.
//
// Packages are discovered and compiled with `go list -export -json -deps`:
// the go command resolves the build list and produces export data for every
// dependency in the build cache, and the driver type-checks only the target
// packages from source, importing the dependencies through their export
// data.  This keeps the driver module-aware without depending on
// golang.org/x/tools/go/packages.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/atpgvet/analysis"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the patterns in dir and type-checks every non-dependency
// package from source.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listPkg)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		if !lp.DepOnly {
			targets = append(targets, &lp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Name == "" || len(t.GoFiles) == 0 {
			continue // metadata-only entry (e.g. empty directory match)
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer backed by lookup.
func exportImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) types.ImporterFrom {
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// absFiles resolves the file names of a package directory.
func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if typeErr != nil {
		return nil, fmt.Errorf("package %s: %v", importPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("package %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    files,
		Fset:       fset,
		Files:      astFiles,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Finding is one diagnostic that survived suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to every package, filters the diagnostics
// through the //atpgvet:ignore directives, and returns the surviving
// findings sorted by position.  Malformed directives (missing the
// `-- <reason>` tail, or naming an unknown analyzer) are findings
// themselves and suppress nothing.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := scanDirectives(pkg, analyzers)
		findings = append(findings, dirs.malformed...)
		seen := make(map[string]bool)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s|%s|%s", name, pos, d.Message)
				if seen[key] || dirs.suppressed(name, pos) {
					return
				}
				seen[key] = true
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// IgnorePrefix is the suppression directive: a comment of the form
//
//	//atpgvet:ignore <analyzer> -- <reason>
//
// on the diagnostic's line (or the line directly above it) suppresses that
// analyzer's diagnostics on the line.  The reason is mandatory: a directive
// without one is itself reported and suppresses nothing.
const IgnorePrefix = "//atpgvet:ignore"

type directives struct {
	// byKey maps "file:line:analyzer" to true for well-formed directives.
	byKey     map[string]bool
	malformed []Finding
}

func (d *directives) suppressed(analyzer string, pos token.Position) bool {
	return d.byKey[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, analyzer)]
}

// scanDirectives collects the //atpgvet:ignore directives of a package.  A
// directive on line N suppresses matching diagnostics on line N and line
// N+1, so both trailing (same line) and preceding (own line) placement work.
func scanDirectives(pkg *Package, analyzers []*analysis.Analyzer) *directives {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	d := &directives{byKey: make(map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
				name, tail, _ := strings.Cut(rest, " ")
				tail = strings.TrimSpace(tail)
				reason, hasReason := "", false
				if after, ok := strings.CutPrefix(tail, "--"); ok {
					reason, hasReason = strings.TrimSpace(after), true
				}
				switch {
				// A "name" of "--" (reason with no analyzer) or "//" (a
				// comment directly after the prefix) means no analyzer was
				// named at all.
				case name == "" || name == "--" || strings.HasPrefix(name, "//"):
					d.malformed = append(d.malformed, Finding{
						Analyzer: "atpgvet", Pos: pos,
						Message: fmt.Sprintf("malformed directive %q: want %s <analyzer> -- <reason>", c.Text, IgnorePrefix),
					})
				case !known[name]:
					d.malformed = append(d.malformed, Finding{
						Analyzer: "atpgvet", Pos: pos,
						Message: fmt.Sprintf("directive suppresses unknown analyzer %q", name),
					})
				case !hasReason || strings.TrimSpace(reason) == "":
					d.malformed = append(d.malformed, Finding{
						Analyzer: name, Pos: pos,
						Message: fmt.Sprintf("suppression of %q needs a reason: %s %s -- <why>", name, IgnorePrefix, name),
					})
				default:
					// Suppress on the directive's own line and the next line.
					d.byKey[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, name)] = true
					d.byKey[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line+1, name)] = true
				}
			}
		}
	}
	return d
}
