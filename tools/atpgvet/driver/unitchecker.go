package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/tools/atpgvet/analysis"
)

// This file implements the `go vet -vettool` side of atpgvet.  The go
// command invokes the tool once per package with a single argument, a JSON
// config file (*.cfg) describing the package: its source files, the import
// map and the export-data file of every dependency (all pre-built by the go
// command).  The tool type-checks the package, runs its analyzers, writes
// the (empty) facts file the protocol requires and reports diagnostics on
// stderr with a non-zero exit when there are findings — the same contract
// golang.org/x/tools/go/analysis/unitchecker implements.

// vetConfig mirrors the fields of the go command's vet config file that the
// driver consumes (cmd/go writes a superset).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker executes one vet protocol invocation and returns the
// process exit code.  Diagnostics are printed to stderr.
func RunUnitchecker(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atpgvet: %v\n", err)
		return 1
	}
	// The protocol requires the facts file even when nothing is reported.
	// atpgvet analyzers exchange no facts, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "atpgvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The engine invariants target production code.  go vet compiles a
	// package with tests as its augmented unit "p [p.test]" (there is no
	// separate plain unit), so that unit is analyzed and findings in
	// *_test.go files are dropped afterwards; external "p_test" packages and
	// generated ".test" mains contain only test code and are skipped whole.
	if isTestOnlyUnit(cfg) {
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "atpgvet: %v\n", err)
		return 1
	}
	var findings []Finding
	for _, f := range Run([]*Package{pkg}, analyzers) {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		findings = append(findings, f)
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// isTestOnlyUnit reports whether the config describes a compilation unit
// containing only test code: an external "p_test" package or a generated
// ".test" main.  The augmented "p [p.test]" unit is NOT test-only — it
// carries the production sources.
func isTestOnlyUnit(cfg *vetConfig) bool {
	base := cfg.ImportPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	return strings.HasSuffix(base, "_test") || strings.HasSuffix(base, ".test")
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return &cfg, nil
}
