// Package analysistest runs an analyzer over fixture packages and matches
// its findings against `// want` expectations, mirroring the x/tools
// package of the same name.
//
// Fixtures live under the analyzer package's testdata/src directory — real
// packages inside this module (the go command only hides testdata from
// wildcard patterns, so they are listable by explicit path and may import
// each other through their full module paths).  An expectation is a
// trailing comment on the diagnostic's line:
//
//	s.Assign() // want `never calls Undo`
//
// Each backquoted (or quoted) string is a regexp that must match one
// finding reported on that line; findings and expectations must match
// one-to-one.  Suppression directives interact as in production: a
// well-formed //atpgvet:ignore removes the finding (so the fixture wants
// nothing), a reasonless one leaves the finding and adds a second
// "needs a reason" finding on the directive's line.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/driver"
)

// Run loads the fixture packages (paths relative to the analyzer package
// directory, e.g. "./testdata/src/a") and checks the analyzer's findings
// against the // want expectations in their sources.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	findings := driver.Run(pkgs, []*analysis.Analyzer{a})

	type key struct {
		file string
		line int
	}
	expects := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					res, ok := parseWant(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					expects[k] = append(expects[k], res...)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range expects[k] {
			if re.MatchString(f.Message) {
				expects[k] = append(expects[k][:i], expects[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for k, res := range expects {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched `%s`", k.file, k.line, re)
		}
	}

	// Fail loudly if a fixture package somehow contains no code (e.g. a
	// typo in the path pattern).
	for _, pkg := range pkgs {
		n := 0
		for _, f := range pkg.Files {
			n += len(f.Decls)
		}
		if n == 0 {
			t.Errorf("fixture package %s has no declarations", pkg.ImportPath)
		}
	}
}

// parseWant extracts the regexps of a `// want` comment.
func parseWant(text string) ([]*regexp.Regexp, bool) {
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil, false
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	var out []*regexp.Regexp
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '`', '"':
			quote = rest[0]
		default:
			break
		}
		if quote == 0 {
			break
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			break
		}
		expr := rest[1 : 1+end]
		re, err := regexp.Compile(expr)
		if err != nil {
			panic(fmt.Sprintf("bad want regexp %q: %v", expr, err))
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[2+end:])
	}
	return out, len(out) > 0
}
