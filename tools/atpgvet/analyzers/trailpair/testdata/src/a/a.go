// Package a is the trailpair fixture: Assign/Undo pairing violations, the
// accepted forms, and the suppression directive cases.
package a

import "repro/tools/atpgvet/analyzers/trailpair/testdata/src/implic"

func missingUndo(s *implic.State) {
	s.Assign() // want `never calls Undo`
}

func earlyReturn(s *implic.State, bad bool) {
	s.Assign()
	if bad {
		return // want `may leak an open trail frame`
	}
	s.Undo()
}

func trailingOpen(s *implic.State) {
	s.Assign()
	s.Undo()
	s.Assign() // want `no Undo on the remaining paths`
}

func inLit(s *implic.State) {
	f := func() {
		s.Assign() // want `never calls Undo`
	}
	f()
	s.Assign()
	s.Undo()
}

// deferredUnwind is the recommended form for functions with early returns.
func deferredUnwind(s *implic.State, bad bool) {
	defer func() {
		for s.Depth() > 0 {
			s.Undo()
		}
	}()
	s.Assign()
	if bad {
		return
	}
	s.Assign()
}

func deferredDirect(s *implic.State) {
	s.Assign()
	defer s.Undo()
}

func balanced(s *implic.State) {
	s.Assign()
	s.Undo()
}

func suppressedLeak(s *implic.State) {
	//atpgvet:ignore trailpair -- fixture: frame is reclaimed by the caller's Reset
	s.Assign()
}

func reasonlessLeak(s *implic.State) {
	s.Assign() //atpgvet:ignore trailpair // want `needs a reason` `never calls Undo`
}

func badDirectives(s *implic.State) {
	s.Assign() //atpgvet:ignore nosuchanalyzer -- suppresses nothing // want `unknown analyzer`
	s.Undo()
	//atpgvet:ignore -- no analyzer named // want `malformed directive`
	s.Assign()
	s.Undo()
}
