// Package implic mocks the engine's implication state for trailpair
// fixtures: the analyzer matches methods by (package path suffix "implic",
// type State, method name), so this stand-in is indistinguishable from the
// real package.
package implic

// State mimics repro/internal/implic.State's trail interface.
type State struct{ depth int }

// Assign opens a trail frame.
func (s *State) Assign() { s.depth++ }

// Undo closes the most recent frame.
func (s *State) Undo() { s.depth-- }

// Depth reports the number of open frames.
func (s *State) Depth() int { return s.depth }
