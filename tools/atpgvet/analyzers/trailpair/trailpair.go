// Package trailpair checks that every implic.State.Assign (a trail frame
// open) is balanced by an Undo on the paths out of the enclosing function,
// in the spirit of classic lock/unlock pairing analyzers.  A leaked frame
// means the next backtrack in the decision loop restores the wrong state —
// the bug only surfaces as an equivalence failure many operations later, so
// it is enforced here at compile time instead.
package trailpair

import (
	"go/ast"
	"go/token"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/astcheck"
)

// Analyzer is the trailpair check.
var Analyzer = &analysis.Analyzer{
	Name: "trailpair",
	Doc: `check that implic.State.Assign frames are balanced by Undo

A function that opens a trail frame with State.Assign must close it on every
path out of the function: either with explicit Undo calls, or — the robust
form for functions with early returns — with a deferred unwind that calls
Undo.  Functions that open frames and never Undo, return between an Assign
and its Undo, or fall off the end with an open frame are reported.`,
	Run: run,
}

const (
	implicPkg = "implic"
	stateType = "State"
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, scope := range astcheck.Scopes(f) {
			checkScope(pass, scope)
		}
	}
	return nil, nil
}

// checkScope applies the pairing rules to one function-like scope.  The
// analysis is lexical, not a full CFG: Assign/Undo positions are compared in
// source order, which matches how the decision loops of the generator are
// written, and a deferred unwind (the recommended form) always satisfies the
// check.  Function literals are separate scopes, except that a deferred
// literal's Undo calls count for the scope that defers it.
func checkScope(pass *analysis.Pass, scope *astcheck.FuncScope) {
	var (
		assigns   []token.Pos
		undos     []token.Pos
		deferUndo bool
		returns   []token.Pos
	)
	astcheck.WalkShallow(scope.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := astcheck.IsMethodOn(pass.TypesInfo, n, implicPkg, stateType, "Assign"); ok {
				assigns = append(assigns, n.Pos())
			}
			if _, ok := astcheck.IsMethodOn(pass.TypesInfo, n, implicPkg, stateType, "Undo"); ok {
				undos = append(undos, n.Pos())
			}
		case *ast.DeferStmt:
			if deferCallsUndo(pass, n) {
				deferUndo = true
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})
	if len(assigns) == 0 {
		return
	}
	if deferUndo {
		return
	}
	if len(undos) == 0 {
		pass.Reportf(assigns[0],
			"%s opens a trail frame (implic.State.Assign) but never calls Undo; add Undo on every exit path or a deferred unwind", scope.Name())
		return
	}
	// Early return between a frame open and its close.
	firstAssign := assigns[0]
	for _, r := range returns {
		if r <= firstAssign {
			continue
		}
		if !undoBetween(undos, firstAssign, r) {
			pass.Reportf(r,
				"return may leak an open trail frame (implic.State.Assign without Undo before this return); use a deferred unwind for early exits")
		}
	}
	// Falling off the end (or looping back) with the last frame still open.
	lastAssign := assigns[len(assigns)-1]
	lastUndo := undos[len(undos)-1]
	if lastUndo < lastAssign {
		pass.Reportf(lastAssign,
			"trail frame opened here has no Undo on the remaining paths of %s; use a deferred unwind", scope.Name())
	}
}

// undoBetween reports whether some Undo lies in the (open, closed] position
// interval.
func undoBetween(undos []token.Pos, after, until token.Pos) bool {
	for _, u := range undos {
		if u > after && u <= until {
			return true
		}
	}
	return false
}

// deferCallsUndo reports whether the deferred call is State.Undo directly or
// a function literal whose body (at any depth) calls State.Undo.
func deferCallsUndo(pass *analysis.Pass, d *ast.DeferStmt) bool {
	if _, ok := astcheck.IsMethodOn(pass.TypesInfo, d.Call, implicPkg, stateType, "Undo"); ok {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := astcheck.IsMethodOn(pass.TypesInfo, call, implicPkg, stateType, "Undo"); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
