package trailpair_test

import (
	"testing"

	"repro/tools/atpgvet/analysistest"
	"repro/tools/atpgvet/analyzers/trailpair"
)

func TestTrailpair(t *testing.T) {
	analysistest.Run(t, trailpair.Analyzer, "./testdata/src/a")
}
