// Package detmerge checks that the deterministic merge path stays
// deterministic.  The sharded engine's guarantee — the merged test set and
// result classifications are a pure function of the fault list, independent
// of worker count, dispatch policy and steal interleaving — dies silently
// if any function on the merge path iterates a map (random order) or sorts
// with sort.Slice (unstable) without a total comparator.
//
// Functions annotated //atpgvet:deterministic are roots; every function
// reachable from a root through package-local static calls is checked.
package detmerge

import (
	"go/ast"
	"go/types"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/astcheck"
)

// Analyzer is the detmerge check.
var Analyzer = &analysis.Analyzer{
	Name: "detmerge",
	Doc: `forbid map iteration and unstable sorts on the deterministic merge path

Functions annotated //atpgvet:deterministic (and everything they reach
through package-local calls) may not range over maps — iteration order is
randomized — and may not call sort.Slice, which is unstable: equal elements
come out in unspecified order, so a comparator that is not total breaks
cross-run determinism.  Use slice iteration, sorted key slices,
sort.SliceStable, or suppress with a reason proving the operation is
order-independent.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	graph := astcheck.BuildCallGraph(pass.Files, pass.TypesInfo)
	var roots []*types.Func
	for fn, decl := range graph.Decls {
		if astcheck.HasAnnotation(decl, "deterministic") {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	for fn := range graph.Reachable(roots) {
		decl := graph.Decls[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"range over map in %s, which is on the deterministic merge path (//atpgvet:deterministic); map iteration order is randomized", fn.Name())
				}
			case *ast.CallExpr:
				if callee := astcheck.Callee(pass.TypesInfo, n); callee != nil &&
					callee.Name() == "Slice" && callee.Pkg() != nil && callee.Pkg().Path() == "sort" {
					pass.Reportf(n.Pos(),
						"sort.Slice in %s, which is on the deterministic merge path (//atpgvet:deterministic); use sort.SliceStable or a provably total comparator", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
