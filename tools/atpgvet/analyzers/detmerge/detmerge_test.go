package detmerge_test

import (
	"testing"

	"repro/tools/atpgvet/analysistest"
	"repro/tools/atpgvet/analyzers/detmerge"
)

func TestDetmerge(t *testing.T) {
	analysistest.Run(t, detmerge.Analyzer, "./testdata/src/a")
}
