// Package a is the detmerge fixture: map iteration and unstable sorts on
// the deterministic merge path, reachable-callee propagation, the legal
// forms, and the suppression cases.
package a

import "sort"

type result struct {
	id   int
	bits uint64
}

// merge is a deterministic-path root; sortResults is reached from it.
//
//atpgvet:deterministic
func merge(byID map[int]result, order []int) []result {
	out := make([]result, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	for id := range byID { // want `range over map`
		_ = id
	}
	sortResults(out)
	return out
}

func sortResults(rs []result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].id < rs[j].id }) // want `sort.Slice`
}

// mergeStable uses the stable sort, which is fine.
//
//atpgvet:deterministic
func mergeStable(rs []result) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].id < rs[j].id })
}

// notOnPath is not reachable from any annotated root, so its map range is
// not the analyzer's business.
func notOnPath(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

//atpgvet:deterministic
func absorb(dst, src map[int]bool) {
	//atpgvet:ignore detmerge -- fixture: order-independent map-to-map copy
	for k := range src {
		dst[k] = true
	}
}

//atpgvet:deterministic
func absorbNoReason(dst, src map[int]bool) {
	//atpgvet:ignore detmerge // want `needs a reason`
	for k := range src { // want `range over map`
		dst[k] = true
	}
}
