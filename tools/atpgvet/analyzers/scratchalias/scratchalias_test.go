package scratchalias_test

import (
	"testing"

	"repro/tools/atpgvet/analysistest"
	"repro/tools/atpgvet/analyzers/scratchalias"
)

func TestScratchalias(t *testing.T) {
	analysistest.Run(t, scratchalias.Analyzer, "./testdata/src/a")
}
