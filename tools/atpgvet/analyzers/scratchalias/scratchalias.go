// Package scratchalias checks the aliasing contract of State-owned scratch
// slices.  implic.State.Unjustified returns a buffer owned by the State: it
// is overwritten by the next Unjustified call and invalidated by mutating
// calls on the same State, so callers may only iterate it locally.  The same
// contract applies to any same-package method annotated //atpgvet:scratch.
//
// Reported misuses:
//   - storing the result in a struct field, a package-level variable, or
//     returning it (the alias outlives the call site);
//   - growing it with append (reallocates or clobbers the State's buffer);
//   - using it after a subsequent mutating call on the same receiver
//     (including inside a range over the scratch slice).
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/astcheck"
)

// Analyzer is the scratchalias check.
var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc: `check that State-owned scratch slices are not retained or grown

The result of implic.State.Unjustified (and of methods annotated
//atpgvet:scratch) aliases a buffer owned by the receiver.  It must be
consumed before the receiver is mutated again, must not be stored in
longer-lived locations, and must not be grown with append.`,
	Run: run,
}

// mutators are the State methods that may rewrite the scratch buffer or the
// planes it is derived from; using a scratch alias after one of these calls
// on the same receiver reads stale or rewritten data.
var mutators = map[string]bool{
	"Assign": true, "Undo": true, "Reset": true, "Imply": true,
	"ForwardSim": true, "AddRequirement": true, "AssignPI": true,
	"AssignPIWord": true, "ClearPI": true, "MarkConflict": true,
	"Unjustified": true,
}

func run(pass *analysis.Pass) (any, error) {
	scratch := scratchMethods(pass)
	for _, f := range pass.Files {
		for _, scope := range astcheck.Scopes(f) {
			checkScope(pass, scope, scratch)
		}
	}
	return nil, nil
}

// scratchMethods collects the same-package methods annotated
// //atpgvet:scratch, so packages can extend the contract beyond the
// built-in implic.State.Unjustified.
func scratchMethods(pass *analysis.Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Recv == nil || !astcheck.HasAnnotation(decl, "scratch") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out
}

// isScratchCall reports whether the call returns a State-owned scratch slice
// and returns the receiver expression.
func isScratchCall(pass *analysis.Pass, scratch map[*types.Func]bool, call *ast.CallExpr) (ast.Expr, bool) {
	if recv, ok := astcheck.IsMethodOn(pass.TypesInfo, call, "implic", "State", "Unjustified"); ok {
		return recv, true
	}
	if fn := astcheck.Callee(pass.TypesInfo, call); fn != nil && scratch[fn] {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return sel.X, true
		}
	}
	return nil, false
}

func checkScope(pass *analysis.Pass, scope *astcheck.FuncScope, scratch map[*types.Func]bool) {
	info := pass.TypesInfo

	// Pass 1: find scratch bindings (x := recv.Unjustified(...)) and direct
	// stores of scratch results into non-local locations.
	type binding struct {
		obj  types.Object // the local variable holding the alias
		recv string       // receiver expression, canonicalized
		pos  token.Pos
	}
	var bindings []binding
	addBinding := func(lhs ast.Expr, recv ast.Expr, pos token.Pos) {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				bindings = append(bindings, binding{obj: obj, recv: types.ExprString(recv), pos: pos})
				return
			}
			if obj := info.Uses[id]; obj != nil {
				if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != v.Pkg().Scope() {
					bindings = append(bindings, binding{obj: obj, recv: types.ExprString(recv), pos: pos})
					return
				}
			}
		}
		pass.Reportf(pos, "scratch slice stored in a non-local location; it aliases a State-owned buffer that the next call overwrites")
	}
	astcheck.WalkShallow(scope.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if recv, ok := isScratchCall(pass, scratch, call); ok {
					addBinding(n.Lhs[i], recv, call.Pos())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					if recv, ok := isScratchCall(pass, scratch, call); ok {
						// Returning the scratch directly re-exports the alias;
						// legal only for the scratch methods themselves
						// (annotate the wrapper //atpgvet:scratch).
						if !scopeIsScratch(pass, scope, scratch, recv) {
							pass.Reportf(call.Pos(), "scratch slice returned to the caller; annotate this method //atpgvet:scratch or copy the slice")
						}
					}
				}
			}
		}
		return true
	})

	// Pass 2: per binding, flag appends, re-stores and use-after-mutation.
	for _, b := range bindings {
		checkBinding(pass, scope, b.obj, b.recv, b.pos)
	}

	// Pass 3: mutating the receiver while ranging over its scratch result.
	astcheck.WalkShallow(scope.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(rng.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := isScratchCall(pass, scratch, call)
		if !ok {
			return true
		}
		recvStr := types.ExprString(recv)
		astcheck.WalkShallow(rng.Body, func(m ast.Node) bool {
			if mc, ok := m.(*ast.CallExpr); ok {
				if name, ok := mutatorCallOn(pass, mc, recvStr); ok {
					pass.Reportf(mc.Pos(), "%s.%s() inside a range over %s.Unjustified(...) mutates the scratch slice being iterated", recvStr, name, recvStr)
				}
			}
			return true
		})
		return true
	})
}

// scopeIsScratch reports whether the enclosing declaration is itself a
// scratch method on the same receiver (those may legally hand the buffer
// out).
func scopeIsScratch(pass *analysis.Pass, scope *astcheck.FuncScope, scratch map[*types.Func]bool, recv ast.Expr) bool {
	if scope.Lit != nil || scope.Decl == nil || scope.Decl.Recv == nil {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[scope.Decl.Name].(*types.Func)
	return ok && scratch[fn]
}

// mutatorCallOn reports whether call is a mutating State method call whose
// receiver canonicalizes to recvStr.
func mutatorCallOn(pass *analysis.Pass, call *ast.CallExpr, recvStr string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return "", false
	}
	recv, ok := astcheck.IsMethodOn(pass.TypesInfo, call, "implic", "State", sel.Sel.Name)
	if !ok || types.ExprString(recv) != recvStr {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkBinding flags misuses of one scratch alias variable.
func checkBinding(pass *analysis.Pass, scope *astcheck.FuncScope, obj types.Object, recvStr string, bindPos token.Pos) {
	info := pass.TypesInfo
	var mutations []token.Pos // positions of mutating calls on the receiver after the binding

	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}

	astcheck.WalkShallow(scope.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if n.Pos() > bindPos {
				if _, ok := mutatorCallOn(pass, n, recvStr); ok {
					mutations = append(mutations, n.Pos())
				}
			}
			// append(x, ...) grows the State-owned buffer.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" &&
				len(n.Args) > 0 && usesObj(n.Args[0]) {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					pass.Reportf(n.Pos(), "append to scratch slice %s grows a State-owned buffer; copy it first", obj.Name())
				}
			}
		case *ast.AssignStmt:
			// Re-storing the alias into a field or package-level variable.
			for i, rhs := range n.Rhs {
				if !usesObj(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					if v, ok := info.ObjectOf(lhs).(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
						pass.Reportf(n.Pos(), "scratch slice %s stored in package-level variable %s; it aliases a State-owned buffer", obj.Name(), lhs.Name)
					}
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(), "scratch slice %s stored in %s; it aliases a State-owned buffer that the next call overwrites", obj.Name(), types.ExprString(lhs))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObj(res) {
					pass.Reportf(n.Pos(), "scratch slice %s returned to the caller; copy it or annotate the method //atpgvet:scratch", obj.Name())
				}
			}
		case *ast.Ident:
			if info.Uses[n] == obj && n.Pos() > bindPos && afterAny(mutations, n.Pos()) {
				pass.Reportf(n.Pos(), "scratch slice %s used after a mutating call on %s; the buffer may have been rewritten", obj.Name(), recvStr)
			}
		}
		return true
	})
}

// afterAny reports whether pos lies after at least one recorded mutation.
func afterAny(mutations []token.Pos, pos token.Pos) bool {
	for _, m := range mutations {
		if pos > m {
			return true
		}
	}
	return false
}
