// Package implic mocks the engine's implication state for scratchalias
// fixtures; the analyzer matches by (package path suffix "implic", type
// State, method name).
package implic

// State mimics repro/internal/implic.State's scratch-slice interface.
type State struct{ buf []int }

// Unjustified returns a State-owned scratch slice.
func (s *State) Unjustified(level int) []int { return s.buf }

// Assign is a mutating call.
func (s *State) Assign() {}

// Undo is a mutating call.
func (s *State) Undo() {}

// Imply is a mutating call.
func (s *State) Imply() bool { return true }

// Reset is a mutating call.
func (s *State) Reset() {}

// ForwardSim is a mutating call.
func (s *State) ForwardSim() {}
