// Package a is the scratchalias fixture: retained, grown and stale uses of
// State-owned scratch slices, the legal local-iteration forms, the
// //atpgvet:scratch annotation, and the suppression cases.
package a

import "repro/tools/atpgvet/analyzers/scratchalias/testdata/src/implic"

type holder struct{ saved []int }

var global []int

func storeField(h *holder, s *implic.State) {
	h.saved = s.Unjustified(0) // want `non-local location`
}

func storeGlobal(s *implic.State) {
	x := s.Unjustified(0)
	global = x // want `package-level variable`
}

func storeFieldLater(h *holder, s *implic.State) {
	u := s.Unjustified(0)
	h.saved = u // want `stored in h.saved`
}

func returnScratch(s *implic.State) []int {
	return s.Unjustified(0) // want `returned to the caller`
}

func returnBinding(s *implic.State) []int {
	u := s.Unjustified(0)
	return u // want `returned to the caller`
}

func appendScratch(s *implic.State) {
	u := s.Unjustified(0)
	u = append(u, 7) // want `grows a State-owned buffer`
	_ = u
}

func useAfterMutation(s *implic.State) int {
	u := s.Unjustified(0)
	s.Imply()
	return u[0] // want `used after a mutating call`
}

func mutateInRange(s *implic.State) {
	for range s.Unjustified(0) {
		s.Assign() // want `mutates the scratch slice being iterated`
	}
}

// localIterate is the legal form: consume the scratch before the next call
// on the receiver.
func localIterate(s *implic.State) int {
	sum := 0
	for _, n := range s.Unjustified(1) {
		sum += n
	}
	u := s.Unjustified(2)
	for _, n := range u {
		sum += n
	}
	return sum
}

// Wrap re-exports the scratch buffer legally by carrying the annotation.
type Wrap struct{ st *implic.State }

// Frontier hands out the State's scratch buffer unchanged.
//
//atpgvet:scratch
func (w *Wrap) Frontier() []int {
	return w.st.Unjustified(0)
}

func reexport(w *Wrap) []int {
	return w.Frontier() // want `returned to the caller`
}

func useFrontier(w *Wrap) int {
	total := 0
	for _, n := range w.Frontier() {
		total += n
	}
	return total
}

func suppressedStore(h *holder, s *implic.State) {
	h.saved = s.Unjustified(0) //atpgvet:ignore scratchalias -- fixture: holder is consumed before the next State call
}

func reasonlessStore(h *holder, s *implic.State) {
	h.saved = s.Unjustified(0) //atpgvet:ignore scratchalias // want `needs a reason` `non-local location`
}
