// Package ctxloop checks that fault-unit consume loops stay cancelable.
// The Engine's contract is that cancellation is honored at the next check
// point; a loop that claims scheduler work units but never polls its
// context turns "cancel" into "run to completion" — on a service workload,
// an unbounded leak of compute.
//
// A loop is checked when it claims units (calls sched.Scheduler.Next in its
// condition or body) or when its enclosing function is annotated
// //atpgvet:ctxloop.  The loop passes when its condition or body reads
// ctx.Err(), ctx.Done() or selects on a context's Done channel.
package ctxloop

import (
	"go/ast"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/astcheck"
)

// Analyzer is the ctxloop check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: `require a context check in every scheduler consume loop

Loops that claim work units from a sched.Scheduler (and every loop in a
function annotated //atpgvet:ctxloop) must check ctx.Err() or ctx.Done() at
least once per iteration, so run cancellation stays responsive while the
scheduler drains.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, scope := range astcheck.Scopes(f) {
			annotated := scope.Lit == nil && scope.Decl != nil && astcheck.HasAnnotation(scope.Decl, "ctxloop")
			astcheck.WalkShallow(scope.Body, func(n ast.Node) bool {
				body, cond, isLoop := loopParts(n)
				if !isLoop {
					return true
				}
				if !annotated && !callsSchedNext(pass, cond, body) {
					return true
				}
				if !checksContext(pass, cond, body) {
					pass.Reportf(n.Pos(),
						"loop claims scheduler work units without checking ctx.Err()/ctx.Done() each iteration; cancellation cannot interrupt it")
				}
				return true
			})
		}
	}
	return nil, nil
}

// loopParts extracts the condition and body of a for/range statement.
func loopParts(n ast.Node) (body *ast.BlockStmt, cond ast.Expr, ok bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body, n.Cond, true
	case *ast.RangeStmt:
		return n.Body, n.X, true
	}
	return nil, nil, false
}

// callsSchedNext reports whether the loop condition or body (excluding
// nested function literals and nested loops — a nested claiming loop is
// checked on its own) calls sched.Scheduler.Next.
func callsSchedNext(pass *analysis.Pass, cond ast.Expr, body *ast.BlockStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := astcheck.IsMethodOn(pass.TypesInfo, call, "sched", "Scheduler", "Next"); ok {
				found = true
			}
		}
		return !found
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	if body != nil {
		walkLoopLocal(body, check)
	}
	return found
}

// walkLoopLocal traverses body without descending into nested function
// literals or nested loops, so each loop is judged on the statements it
// executes every iteration.
func walkLoopLocal(body *ast.BlockStmt, visit func(ast.Node) bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		return visit(n)
	}
	for _, stmt := range body.List {
		ast.Inspect(stmt, walk)
	}
}

// checksContext reports whether the loop condition or body contains a
// ctx.Err()/ctx.Done() call or a receive from a context's Done channel.
func checksContext(pass *analysis.Pass, cond ast.Expr, body *ast.BlockStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return !found
		}
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && astcheck.IsContext(t) {
			found = true
		}
		return !found
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	if body != nil {
		walkLoopLocal(body, check)
	}
	return found
}
