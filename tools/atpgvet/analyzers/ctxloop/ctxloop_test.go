package ctxloop_test

import (
	"testing"

	"repro/tools/atpgvet/analysistest"
	"repro/tools/atpgvet/analyzers/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "./testdata/src/a")
}
