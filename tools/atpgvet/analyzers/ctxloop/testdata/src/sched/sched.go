// Package sched mocks the engine's work scheduler for ctxloop fixtures;
// the analyzer matches by (package path suffix "sched", type Scheduler,
// method Next).
package sched

// Unit is one claimable work unit.
type Unit struct {
	Group int
	Shard int
}

// Scheduler hands out units.
type Scheduler struct{ units []Unit }

// Next claims the next unit for a worker.
func (s *Scheduler) Next(worker int) (Unit, bool) {
	if len(s.units) == 0 {
		return Unit{}, false
	}
	u := s.units[0]
	s.units = s.units[1:]
	return u, true
}
