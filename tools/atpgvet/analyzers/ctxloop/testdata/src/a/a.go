// Package a is the ctxloop fixture: consume loops that claim scheduler
// units with and without a per-iteration context check, the annotation
// form, and the suppression cases.
package a

import (
	"context"

	"repro/tools/atpgvet/analyzers/ctxloop/testdata/src/sched"
)

func consumeBad(sc *sched.Scheduler) {
	for { // want `without checking ctx.Err`
		u, ok := sc.Next(0)
		if !ok {
			return
		}
		_ = u
	}
}

func consumeGood(ctx context.Context, sc *sched.Scheduler) {
	for ctx.Err() == nil {
		u, ok := sc.Next(0)
		if !ok {
			return
		}
		_ = u
	}
}

func consumeSelect(ctx context.Context, sc *sched.Scheduler) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		u, ok := sc.Next(1)
		if !ok {
			return
		}
		_ = u
	}
}

// nestedOuterClean: the outer loop claims nothing itself; the inner loop
// claims and checks, so each loop is judged on its own statements.
func nestedOuterClean(ctx context.Context, sc *sched.Scheduler) {
	for i := 0; i < 4; i++ {
		for ctx.Err() == nil {
			u, ok := sc.Next(i)
			if !ok {
				break
			}
			_ = u
		}
	}
}

// annotatedLoop opts every loop of the function into the check.
//
//atpgvet:ctxloop
func annotatedLoop(items []int) int {
	total := 0
	for _, it := range items { // want `without checking ctx.Err`
		total += it
	}
	return total
}

func suppressedDrain(sc *sched.Scheduler) {
	//atpgvet:ignore ctxloop -- fixture: bounded drain, terminates without cancellation
	for {
		if _, ok := sc.Next(0); !ok {
			return
		}
	}
}

func reasonlessDrain(sc *sched.Scheduler) {
	//atpgvet:ignore ctxloop // want `needs a reason`
	for { // want `without checking ctx.Err`
		if _, ok := sc.Next(0); !ok {
			return
		}
	}
}
