// Package a is the hotalloc fixture: allocation sites in annotated hot
// paths, reachable-callee propagation, the allowed reuse idioms, and the
// suppression cases.
package a

type word struct{ lo, hi uint64 }

// hotKernel is clean itself but reaches helper, which allocates.
//
//atpgvet:noalloc
func hotKernel(dst, src []uint64) int {
	n := 0
	for i := range src {
		dst[i] = src[i] &^ 7
		n++
	}
	helper(dst)
	return n
}

func helper(xs []uint64) {
	_ = make([]uint64, 4) // want `make`
}

//atpgvet:noalloc
func badAppend(xs []uint64, x uint64) []uint64 {
	ys := append(xs, x) // want `append outside`
	return ys
}

// selfAppend is the engine's buffer-reuse idiom and is allowed.
//
//atpgvet:noalloc
func selfAppend(buf []uint64, x uint64) []uint64 {
	buf = append(buf, x)
	return buf
}

//atpgvet:noalloc
func boxes(x int) {
	sink(x) // want `boxed into interface parameter`
}

func sink(v any) { _ = v }

//atpgvet:noalloc
func sliceLit() {
	_ = []int{1, 2} // want `slice literal`
}

//atpgvet:noalloc
func closure() {
	f := func() {} // want `function literal`
	f()
}

//atpgvet:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation`
}

// structOK returns a struct value literal, which does not allocate.
//
//atpgvet:noalloc
func structOK() word {
	return word{lo: 1}
}

//atpgvet:noalloc
func suppressedWarm(n int) []uint64 {
	//atpgvet:ignore hotalloc -- fixture: one-time warm-up allocation outside the steady state
	return make([]uint64, n)
}

//atpgvet:noalloc
func reasonlessWarm(n int) []uint64 {
	//atpgvet:ignore hotalloc // want `needs a reason`
	return make([]uint64, n) // want `make`
}
