package hotalloc_test

import (
	"testing"

	"repro/tools/atpgvet/analysistest"
	"repro/tools/atpgvet/analyzers/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "./testdata/src/a")
}
