// Package hotalloc rejects escape-analysis-visible allocation sites in
// functions annotated //atpgvet:noalloc — the steady-state hot paths the
// benchmark gate holds at 0 allocs/op (Imply, ForwardSim, Reset, the word
// kernels, sched.Next).  The benchcmp gate catches a regression only after
// a CI bench run on the reference circuit; this check catches the
// allocation at merge time, on every code path.
//
// The check is syntactic and intentionally conservative about the reuse
// idiom: the canonical self-append `x = append(x, ...)` is allowed (its
// cost is amortized by the retained capacity of a reused buffer — the
// pattern every event queue and trail in the engine uses), while any other
// allocation-shaped construct is reported:
//
//   - make, new
//   - append outside the x = append(x, ...) form
//   - slice and map composite literals, and &composite (may escape)
//   - function literals (closure allocation)
//   - interface boxing: explicit conversion to an interface type, or
//     passing a non-interface value to an interface parameter (this is how
//     fmt calls are caught)
//   - go statements and string concatenation
//
// Functions reached from an annotated function through package-local static
// calls are checked too; cross-package callees must carry their own
// annotation (export data has no bodies to inspect).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/atpgvet/analysis"
	"repro/tools/atpgvet/astcheck"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `reject allocation sites in //atpgvet:noalloc hot paths

Functions annotated //atpgvet:noalloc, and every package-local function
they reach, may not contain make/new, non-self appends, slice/map/&
composite literals, closures, interface boxing, go statements or string
concatenation.  Suppress individual sites with //atpgvet:ignore hotalloc
-- <reason> when the site provably does not allocate in steady state.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	graph := astcheck.BuildCallGraph(pass.Files, pass.TypesInfo)
	var roots []*types.Func
	for fn, decl := range graph.Decls {
		if astcheck.HasAnnotation(decl, "noalloc") {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	for fn := range graph.Reachable(roots) {
		checkFunc(pass, fn, graph.Decls[fn])
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *types.Func, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in %s, which is on a //atpgvet:noalloc hot path", what, fn.Name())
	}
	// selfAppends records appends in the allowed x = append(x, ...) reuse
	// form; ast.Inspect visits the assignment before the call, so the set is
	// populated before checkCall sees the append.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure allocation)")
			return false // the literal body runs under its own budget
		case *ast.GoStmt:
			report(n.Pos(), "go statement (goroutine allocation)")
		case *ast.AssignStmt:
			markSelfAppend(pass, n, selfAppends)
		case *ast.CallExpr:
			checkCall(pass, n, selfAppends, report)
		case *ast.CompositeLit:
			checkComposite(pass, n, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation")
					}
				}
			}
		}
		return true
	})
}

// markSelfAppend whitelists the self-append reuse idiom: a single-value
// assignment x = append(x, ...) where the destination expression is
// syntactically identical to append's first argument.
func markSelfAppend(pass *analysis.Pass, n *ast.AssignStmt, selfAppends map[*ast.CallExpr]bool) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltin(pass.TypesInfo, call, "append") || len(call.Args) == 0 {
		return
	}
	if types.ExprString(n.Lhs[0]) == types.ExprString(call.Args[0]) {
		selfAppends[call] = true
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	info := pass.TypesInfo
	switch {
	case isBuiltin(info, call, "make"):
		report(call.Pos(), "make")
		return
	case isBuiltin(info, call, "new"):
		report(call.Pos(), "new")
		return
	case isBuiltin(info, call, "append"):
		if !selfAppends[call] {
			report(call.Pos(), "append outside the x = append(x, ...) reuse form")
		}
		return
	}
	// Explicit conversion to an interface type: T(x) with T interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			if len(call.Args) == 1 {
				if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
					report(call.Pos(), "conversion to interface type (boxing)")
				}
			}
		}
		return
	}
	// Interface boxing through a call: a non-interface argument passed to an
	// interface-typed parameter (fmt-style APIs land here via ...any).
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice does not box
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if at := info.TypeOf(arg); at != nil && !types.IsInterface(at) && !isUntypedNil(info, arg) {
			report(arg.Pos(), "argument boxed into interface parameter")
		}
	}
}

// checkComposite flags slice and map literals; struct and array value
// literals do not allocate and pass.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit, report func(token.Pos, string)) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal")
	case *types.Map:
		report(lit.Pos(), "map literal")
	}
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
