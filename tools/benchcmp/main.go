// Command benchcmp converts `go test -bench` output into a JSON benchmark
// record and compares two such records, failing on regressions.  It is the
// engine of the CI bench job: every run on main uploads its record as an
// artifact, and later runs download the previous record and gate on it.
//
// Convert benchmark output (stdin or -in) to JSON:
//
//	go test -run '^$' -bench BenchmarkRun -benchtime=3x -count=3 . \
//	    | go run ./tools/benchcmp -convert -sha "$GITHUB_SHA" -out BENCH_$GITHUB_SHA.json
//
// `-benchmem` columns (B/op, allocs/op) are captured when present.
//
// Compare a new record against a previous one (exit status 1 plus a clear
// diff message when any of the named benchmarks regresses more than
// -max-regress percent; -key takes a comma-separated list):
//
//	go run ./tools/benchcmp -compare prev.json new.json \
//	    -key 'BenchmarkRun/workers=4,BenchmarkImply' -max-regress 25
//
// Allocation budgets are gated on the new record alone (no history needed):
//
//	go run ./tools/benchcmp -compare prev.json new.json \
//	    -max-allocs 'BenchmarkImply=0,BenchmarkForwardSim=0'
//
// Custom metrics reported with testing.B.ReportMetric (e.g. the compaction
// "reduction" ratio) are captured during -convert and can be gated with a
// floor on the new record:
//
//	go run ./tools/benchcmp -compare prev.json new.json \
//	    -min-metric 'BenchmarkCompactionReduction:reduction=0.15'
//
// The JSON stores, per benchmark, every ns/op sample (one per -count
// repetition) and their median; the raw benchmark text is embedded under
// "raw", so `jq -r .raw old.json > old.txt` recovers input that benchstat
// consumes directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is the persisted form of one benchmark run.
type Record struct {
	// SHA is the commit the record was measured at.
	SHA string `json:"sha"`
	// Benchmarks holds one entry per benchmark name, sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw is the untouched `go test -bench` output (benchstat-compatible).
	Raw string `json:"raw"`
}

// Benchmark aggregates the samples of one benchmark.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkRun/workers=4".
	Name string `json:"name"`
	// NsPerOp lists every ns/op sample, in input order.
	NsPerOp []float64 `json:"ns_per_op"`
	// MedianNsPerOp is the median of NsPerOp, the comparison statistic.
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	// BytesPerOp and AllocsPerOp list the -benchmem samples, when present.
	BytesPerOp  []float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
	// MedianAllocsPerOp is the median of AllocsPerOp (0 when absent), the
	// statistic gated by -max-allocs.
	MedianAllocsPerOp float64 `json:"median_allocs_per_op,omitempty"`
	// Metrics holds the samples of custom units reported with
	// testing.B.ReportMetric (e.g. "reduction"), keyed by unit name.
	Metrics map[string][]float64 `json:"metrics,omitempty"`
	// MetricMedians holds the per-unit medians of Metrics, the statistics
	// gated by -min-metric.
	MetricMedians map[string]float64 `json:"metric_medians,omitempty"`
}

// benchLine matches the start of one result line of `go test -bench`
// output; the value/unit pairs after the iteration count are parsed
// field-wise, so custom ReportMetric units are captured alongside ns/op,
// B/op and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procSuffix is the trailing -GOMAXPROCS decoration of benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		convert    = flag.Bool("convert", false, "convert benchmark text (stdin or -in) to JSON")
		in         = flag.String("in", "", "benchmark text input file for -convert (default stdin)")
		out        = flag.String("out", "", "JSON output file for -convert (default stdout)")
		sha        = flag.String("sha", "", "commit SHA recorded in the converted JSON")
		compare    = flag.Bool("compare", false, "compare two JSON records: benchcmp -compare old.json new.json")
		keys       = flag.String("key", "BenchmarkRun/workers=4", "comma-separated benchmark names gated by -compare")
		maxRegress = flag.Float64("max-regress", 25, "maximum allowed ns/op regression of each -key, in percent")
		maxAllocs  = flag.String("max-allocs", "", "comma-separated name=N allocation budgets gated on the new record (median allocs/op)")
		minMetric  = flag.String("min-metric", "", "comma-separated name:unit=min floors for custom metrics, gated on the new record (e.g. 'BenchmarkCompactionReduction:reduction=0.15')")
	)
	flag.Parse()

	switch {
	case *convert:
		if err := runConvert(*in, *out, *sha); err != nil {
			fatal(err)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		ok, report, err := runCompare(flag.Arg(0), flag.Arg(1), *keys, *maxRegress, *maxAllocs, *minMetric)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	default:
		fatal(fmt.Errorf("nothing to do: pass -convert or -compare (see -h)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(2)
}

func runConvert(in, out, sha string) error {
	var src io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	text, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	rec, err := Parse(string(text), sha)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse extracts the benchmark samples from `go test -bench` output.  The
// value/unit pairs after the iteration count are read pairwise: ns/op, B/op
// and allocs/op populate their dedicated fields, any other unit (a custom
// testing.B.ReportMetric unit such as "reduction") is collected under
// Metrics.
func Parse(text, sha string) (Record, error) {
	type samples struct {
		ns, bytes, allocs []float64
		metrics           map[string][]float64
	}
	byName := make(map[string]*samples)
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		fields := strings.Fields(m[3])
		if len(fields) < 2 || len(fields)%2 != 0 {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		s := byName[name]
		if s == nil {
			s = &samples{metrics: make(map[string][]float64)}
			byName[name] = s
		}
		sawNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Record{}, fmt.Errorf("bad %s value in %q: %w", fields[i+1], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.ns = append(s.ns, value)
				sawNs = true
			case "B/op":
				s.bytes = append(s.bytes, value)
			case "allocs/op":
				s.allocs = append(s.allocs, value)
			default:
				s.metrics[unit] = append(s.metrics[unit], value)
			}
		}
		if !sawNs {
			return Record{}, fmt.Errorf("no ns/op column in %q", line)
		}
	}
	if len(byName) == 0 {
		return Record{}, fmt.Errorf("no benchmark result lines found in input")
	}
	rec := Record{SHA: sha, Raw: string(text)}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := byName[name]
		b := Benchmark{
			Name:          name,
			NsPerOp:       s.ns,
			MedianNsPerOp: median(s.ns),
			BytesPerOp:    s.bytes,
			AllocsPerOp:   s.allocs,
		}
		if len(s.allocs) > 0 {
			b.MedianAllocsPerOp = median(s.allocs)
		}
		if len(s.metrics) > 0 {
			b.Metrics = s.metrics
			b.MetricMedians = make(map[string]float64, len(s.metrics))
			for unit, values := range s.metrics {
				b.MetricMedians[unit] = median(values)
			}
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	return rec, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func load(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func (r Record) find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// runCompare renders a delta table of every benchmark the two records share
// and gates on the named keys: ok is false when any key's median ns/op grew
// by more than maxRegress percent, when a -max-allocs budget is exceeded in
// the new record, or when a -min-metric floor is undercut in the new record.
func runCompare(oldPath, newPath, keys string, maxRegress float64, maxAllocs, minMetric string) (ok bool, report string, err error) {
	oldRec, err := load(oldPath)
	if err != nil {
		return false, "", err
	}
	newRec, err := load(newPath)
	if err != nil {
		return false, "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "benchmark comparison: old=%s new=%s\n", orUnknown(oldRec.SHA), orUnknown(newRec.SHA))
	fmt.Fprintf(&sb, "%-40s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nb := range newRec.Benchmarks {
		ob, found := oldRec.find(nb.Name)
		if !found {
			fmt.Fprintf(&sb, "%-40s %15s %15.0f %9s\n", nb.Name, "-", nb.MedianNsPerOp, "new")
			continue
		}
		fmt.Fprintf(&sb, "%-40s %15.0f %15.0f %+8.1f%%\n",
			nb.Name, ob.MedianNsPerOp, nb.MedianNsPerOp, delta(ob, nb))
	}

	ok = true
	for _, key := range splitList(keys) {
		nb, found := newRec.find(key)
		if !found {
			return false, sb.String(), fmt.Errorf("benchmark %q missing from %s", key, newPath)
		}
		ob, found := oldRec.find(key)
		if !found {
			fmt.Fprintf(&sb, "\nno previous record of %q — nothing to gate on\n", key)
			continue
		}
		d := delta(ob, nb)
		if d > maxRegress {
			fmt.Fprintf(&sb, "\nFAIL: %s regressed %.1f%% (median %.0f -> %.0f ns/op, old sha %s), above the %.0f%% limit\n",
				key, d, ob.MedianNsPerOp, nb.MedianNsPerOp, orUnknown(oldRec.SHA), maxRegress)
			ok = false
			continue
		}
		fmt.Fprintf(&sb, "\nOK: %s within limits (%+.1f%% vs old sha %s, limit %.0f%%)\n",
			key, d, orUnknown(oldRec.SHA), maxRegress)
	}

	for _, budget := range splitList(maxAllocs) {
		name, limitStr, found := strings.Cut(budget, "=")
		if !found {
			return false, sb.String(), fmt.Errorf("bad -max-allocs entry %q (want name=N)", budget)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			return false, sb.String(), fmt.Errorf("bad -max-allocs limit in %q: %w", budget, err)
		}
		nb, foundB := newRec.find(name)
		if !foundB {
			return false, sb.String(), fmt.Errorf("benchmark %q missing from %s", name, newPath)
		}
		if len(nb.AllocsPerOp) == 0 {
			return false, sb.String(), fmt.Errorf("benchmark %q has no allocs/op samples (run it with -benchmem)", name)
		}
		if nb.MedianAllocsPerOp > limit {
			fmt.Fprintf(&sb, "\nFAIL: %s allocates %.0f allocs/op (median), above the %.0f budget\n",
				name, nb.MedianAllocsPerOp, limit)
			ok = false
		} else {
			fmt.Fprintf(&sb, "\nOK: %s within its allocation budget (%.0f <= %.0f allocs/op)\n",
				name, nb.MedianAllocsPerOp, limit)
		}
	}

	for _, floor := range splitList(minMetric) {
		spec, limitStr, found := strings.Cut(floor, "=")
		if !found {
			return false, sb.String(), fmt.Errorf("bad -min-metric entry %q (want name:unit=min)", floor)
		}
		name, unit, found := strings.Cut(spec, ":")
		if !found {
			return false, sb.String(), fmt.Errorf("bad -min-metric entry %q (want name:unit=min)", floor)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			return false, sb.String(), fmt.Errorf("bad -min-metric floor in %q: %w", floor, err)
		}
		nb, foundB := newRec.find(name)
		if !foundB {
			return false, sb.String(), fmt.Errorf("benchmark %q missing from %s", name, newPath)
		}
		got, hasMetric := nb.MetricMedians[unit]
		if !hasMetric {
			return false, sb.String(), fmt.Errorf("benchmark %q reports no %q metric", name, unit)
		}
		if got < limit {
			fmt.Fprintf(&sb, "\nFAIL: %s %s = %.4f (median), below the %.4f floor\n", name, unit, got, limit)
			ok = false
		} else {
			fmt.Fprintf(&sb, "\nOK: %s %s above its floor (%.4f >= %.4f)\n", name, unit, got, limit)
		}
	}
	return ok, sb.String(), nil
}

func delta(before, after Benchmark) float64 {
	if before.MedianNsPerOp == 0 {
		return 0
	}
	return (after.MedianNsPerOp/before.MedianNsPerOp - 1) * 100
}

func orUnknown(sha string) string {
	if sha == "" {
		return "unknown"
	}
	return sha
}
