package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkRun/workers=4-8         	       3	 251000000 ns/op
BenchmarkRun/workers=4-8         	       3	 249000000 ns/op
BenchmarkRun/schedule=steal-8    	       3	 250000000 ns/op
BenchmarkImply-8                 	     500	     38000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCompactionReduction-8   	       3	 252000000 ns/op	         0.2105 reduction
BenchmarkCompactionReduction-8   	       3	 251000000 ns/op	         0.1900 reduction
PASS
`

func TestParseCapturesMetrics(t *testing.T) {
	rec, err := Parse(sampleBench, "abc")
	if err != nil {
		t.Fatal(err)
	}
	if rec.SHA != "abc" {
		t.Errorf("sha = %q", rec.SHA)
	}
	byName := map[string]Benchmark{}
	for _, b := range rec.Benchmarks {
		byName[b.Name] = b
	}
	run, ok := byName["BenchmarkRun/workers=4"]
	if !ok || len(run.NsPerOp) != 2 || run.MedianNsPerOp != 250000000 {
		t.Errorf("BenchmarkRun/workers=4 parsed wrong: %+v", run)
	}
	if _, ok := byName["BenchmarkRun/schedule=steal"]; !ok {
		t.Error("schedule=steal variant missing")
	}
	imply := byName["BenchmarkImply"]
	if len(imply.AllocsPerOp) != 1 || imply.MedianAllocsPerOp != 0 {
		t.Errorf("BenchmarkImply benchmem columns parsed wrong: %+v", imply)
	}
	red := byName["BenchmarkCompactionReduction"]
	if len(red.Metrics["reduction"]) != 2 {
		t.Fatalf("reduction samples = %v", red.Metrics)
	}
	if got := red.MetricMedians["reduction"]; got < 0.2 || got > 0.21 {
		t.Errorf("reduction median = %v, want (0.1900+0.2105)/2", got)
	}
}

// writeRecord converts text to a JSON record on disk.
func writeRecord(t *testing.T, dir, name, text string) string {
	t.Helper()
	rec, err := Parse(text, name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRecord(t, dir, "old", sampleBench)

	// A clean new record: within the regression limit, reduction above floor.
	newPath := writeRecord(t, dir, "new", sampleBench)
	ok, report, err := runCompare(oldPath, newPath,
		"BenchmarkRun/workers=4,BenchmarkRun/schedule=steal", 25,
		"BenchmarkImply=0", "BenchmarkCompactionReduction:reduction=0.15")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("identical records should pass the gates:\n%s", report)
	}
	for _, want := range []string{"schedule=steal", "reduction above its floor"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// A regression on the steal key fails.
	slow := strings.ReplaceAll(sampleBench, "BenchmarkRun/schedule=steal-8    	       3	 250000000",
		"BenchmarkRun/schedule=steal-8    	       3	 450000000")
	slowPath := writeRecord(t, dir, "slow", slow)
	ok, report, err = runCompare(oldPath, slowPath, "BenchmarkRun/schedule=steal", 25, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if ok || !strings.Contains(report, "FAIL") {
		t.Errorf("60%% steal regression should fail the gate:\n%s", report)
	}

	// A reduction ratio under the floor fails.
	thin := strings.ReplaceAll(sampleBench, "0.2105 reduction", "0.0500 reduction")
	thin = strings.ReplaceAll(thin, "0.1900 reduction", "0.0400 reduction")
	thinPath := writeRecord(t, dir, "thin", thin)
	ok, report, err = runCompare(oldPath, thinPath, "", 25, "",
		"BenchmarkCompactionReduction:reduction=0.15")
	if err != nil {
		t.Fatal(err)
	}
	if ok || !strings.Contains(report, "below the") {
		t.Errorf("reduction below the floor should fail the gate:\n%s", report)
	}

	// Malformed and missing-metric specs are hard errors.
	if _, _, err := runCompare(oldPath, newPath, "", 25, "", "garbage"); err == nil {
		t.Error("malformed -min-metric should error")
	}
	if _, _, err := runCompare(oldPath, newPath, "", 25, "",
		"BenchmarkImply:reduction=0.1"); err == nil {
		t.Error("-min-metric on a benchmark without the metric should error")
	}
}
