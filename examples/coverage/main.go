// Coverage estimation workflow: for a sequential ISCAS89-class circuit
// (combinational part), generate nonrobust tests for a sample of faults,
// then estimate the path delay fault coverage of the resulting compact test
// set with the parallel-pattern fault simulator — the kind of question the
// NEST comparison in Section 5 of the paper is about.
//
// Run with:
//
//	go run ./examples/coverage
package main

import (
	"context"
	"fmt"

	"repro/atpg"
)

func main() {
	profile, _ := atpg.ProfileByName("s1423")
	c, err := atpg.Synthesize(profile)
	if err != nil {
		panic(err)
	}
	fmt.Println("circuit:", c)
	fmt.Println("pseudo primary inputs stand in for the removed flip-flops; only the")
	fmt.Println("combinational part is tested, exactly as in the paper.")
	fmt.Println("path delay faults:", c.FaultCount().String())
	fmt.Println()

	// Generate nonrobust tests for a sample of 768 faults.
	faults := atpg.SampleFaults(c, 768, 11)
	e, err := atpg.New(c, atpg.WithMode(atpg.Nonrobust))
	if err != nil {
		panic(err)
	}
	if _, err := e.Run(context.Background(), faults); err != nil {
		panic(err)
	}
	fmt.Printf("generation: %s\n", e.Stats())

	// Estimate the coverage of the generated test set over independent fault
	// samples of growing size: the estimate stabilises as the sample grows.
	set := e.Tests()
	for _, sample := range []int{200, 1000, 4000} {
		cov, n, err := atpg.EstimateFaultCoverage(c, set.Pairs, sample, int64(sample), false)
		if err != nil {
			panic(err)
		}
		fmt.Printf("estimated nonrobust coverage over %5d sampled faults: %.1f%%\n", n, cov*100)
	}

	// The same simulator also answers "which of my patterns does the work":
	// count how many sampled faults each of the first few patterns detects.
	sample := atpg.SampleFaults(c, 1000, 99)
	perPattern := make([]int, set.Len())
	for i := range set.Pairs {
		res, err := atpg.Simulate(c, set.Pairs[i:i+1], sample, false)
		if err != nil {
			panic(err)
		}
		perPattern[i] = res.NumDetected
	}
	fmt.Println()
	fmt.Println("faults (of the 1000-fault sample) detected by each of the first 10 patterns:")
	for i := 0; i < len(perPattern) && i < 10; i++ {
		fmt.Printf("  pattern %2d: %4d\n", i, perPattern[i])
	}
}
