// Redundancy identification and subpath pruning: run robust generation on a
// circuit that contains unsensitizable paths and show how a conflict during
// implication (with no optional assignments) proves a fault redundant, and
// how the recorded subpath prunes further faults without any search — the
// behaviour discussed around Figure 1 of the paper.
//
// Run with:
//
//	go run ./examples/redundancy
package main

import (
	"context"
	"fmt"

	"repro/atpg"
)

func main() {
	c, err := atpg.Builtin("redundant")
	if err != nil {
		panic(err)
	}
	fmt.Println("circuit:", c)
	fmt.Println(`gate g2 computes a AND (NOT a) AND b, so no transition can ever pass through it
robustly: every path through g2 is a robustly redundant path delay fault.`)
	fmt.Println()

	faults := atpg.AllFaults(c, 0)
	e, err := atpg.New(c, atpg.WithMode(atpg.Robust))
	if err != nil {
		panic(err)
	}
	results, err := e.Run(context.Background(), faults)
	if err != nil {
		panic(err)
	}

	for _, r := range results {
		fmt.Printf("%-36s %-10s settled by %s\n", c.Describe(r.Fault), r.Status, r.Phase)
	}
	st := e.Stats()
	cov := e.Coverage()
	fmt.Println()
	fmt.Printf("redundant faults: %d (of which %d identified by subpath pruning alone)\n",
		cov.Redundant, st.PrunedRedundant)
	fmt.Printf("tested faults:    %d\n", cov.Detected)
	fmt.Printf("aborted faults:   %d (efficiency %.2f%%)\n", cov.Aborted, cov.Efficiency())
}
