// Redundancy identification and subpath pruning: run robust generation on a
// circuit that contains unsensitizable paths and show how a conflict during
// implication (with no optional assignments) proves a fault redundant, and
// how the recorded subpath prunes further faults without any search — the
// behaviour discussed around Figure 1 of the paper.
//
// Run with:
//
//	go run ./examples/redundancy
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

func main() {
	c := bench.RedundantExample()
	fmt.Println("circuit:", c)
	fmt.Println(`gate g2 computes a AND (NOT a) AND b, so no transition can ever pass through it
robustly: every path through g2 is a robustly redundant path delay fault.`)
	fmt.Println()

	faults := paths.EnumerateFaults(c, 0)
	opts := core.DefaultOptions(sensitize.Robust)
	gen := core.New(c, opts)
	results := gen.Run(faults)

	for _, r := range results {
		fmt.Printf("%-36s %-10s settled by %s\n", r.Fault.Describe(c), r.Status, r.Phase)
	}
	st := gen.Stats()
	fmt.Println()
	fmt.Printf("redundant faults: %d (of which %d identified by subpath pruning alone)\n",
		st.Redundant, st.PrunedRedundant)
	fmt.Printf("tested faults:    %d\n", st.Tested+st.DetectedBySim)
	fmt.Printf("aborted faults:   %d (efficiency %.2f%%)\n", st.Aborted, st.Efficiency())
}
