// Robust ATPG on an ISCAS85-class circuit: synthesize the c880 stand-in,
// sample target faults, generate robust tests with the bit-parallel
// generator, compare against the single-bit baseline and fault-simulate the
// resulting test set.
//
// Run with:
//
//	go run ./examples/robustatpg
package main

import (
	"context"
	"fmt"
	"time"

	"repro/atpg"
)

func main() {
	profile, _ := atpg.ProfileByName("c880")
	c, err := atpg.Synthesize(profile)
	if err != nil {
		panic(err)
	}
	fmt.Println("circuit:", c)
	fmt.Println("path delay faults:", c.FaultCount().String())

	// Target a uniform sample of 512 faults; the full fault list of the
	// ISCAS circuits is in the millions.
	faults := atpg.SampleFaults(c, 512, 42)
	ctx := context.Background()

	// Bit-parallel robust generation (L = 64).
	parallel, err := atpg.New(c, atpg.WithMode(atpg.Robust))
	if err != nil {
		panic(err)
	}
	start := time.Now()
	if _, err := parallel.Run(ctx, faults); err != nil {
		panic(err)
	}
	tParallel := time.Since(start)

	// The same algorithm restricted to one bit level: the paper's baseline.
	single, err := atpg.New(c, atpg.WithMode(atpg.Robust), atpg.WithWordWidth(1))
	if err != nil {
		panic(err)
	}
	start = time.Now()
	if _, err := single.Run(ctx, faults); err != nil {
		panic(err)
	}
	tSingle := time.Since(start)

	fmt.Printf("\nbit-parallel: %s   (%s)\n", parallel.Stats(), tParallel.Round(time.Millisecond))
	fmt.Printf("single-bit:   %s   (%s)\n", single.Stats(), tSingle.Round(time.Millisecond))
	if tParallel > 0 {
		fmt.Printf("speed-up (t_single / t_parallel): %.1fx\n", float64(tSingle)/float64(tParallel))
	}

	// Fault-simulate the generated test set over an independent fault sample
	// to estimate its overall robust coverage.
	cov, n, err := atpg.EstimateFaultCoverage(c, parallel.Tests().Pairs, 2000, 7, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nestimated robust coverage of the %d generated pairs over %d sampled faults: %.1f%%\n",
		parallel.Tests().Len(), n, cov*100)
}
