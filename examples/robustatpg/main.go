// Robust ATPG on an ISCAS85-class circuit: synthesize the c880 stand-in,
// sample target faults, generate robust tests with the bit-parallel
// generator, compare against the single-bit baseline and fault-simulate the
// resulting test set.
//
// Run with:
//
//	go run ./examples/robustatpg
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

func main() {
	profile, _ := bench.ProfileByName("c880")
	c := bench.MustSynthesize(profile)
	fmt.Println("circuit:", c)
	fmt.Println("path delay faults:", paths.CountFaults(c).String())

	// Target a uniform sample of 512 faults; the full fault list of the
	// ISCAS circuits is in the millions.
	faults := paths.SampleFaults(c, 512, 42)

	// Bit-parallel robust generation (L = 64).
	start := time.Now()
	parallel := core.New(c, core.DefaultOptions(sensitize.Robust))
	parallel.Run(faults)
	tParallel := time.Since(start)

	// The same algorithm restricted to one bit level: the paper's baseline.
	start = time.Now()
	single := core.New(c, core.SingleBitOptions(sensitize.Robust))
	single.Run(faults)
	tSingle := time.Since(start)

	fmt.Printf("\nbit-parallel: %s   (%s)\n", parallel.Stats(), tParallel.Round(time.Millisecond))
	fmt.Printf("single-bit:   %s   (%s)\n", single.Stats(), tSingle.Round(time.Millisecond))
	if tParallel > 0 {
		fmt.Printf("speed-up (t_single / t_parallel): %.1fx\n", float64(tSingle)/float64(tParallel))
	}

	// Fault-simulate the generated test set over an independent fault sample
	// to estimate its overall robust coverage.
	cov, n, err := faultsim.EstimateCoverage(c, parallel.TestSet().Pairs, 2000, 7, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nestimated robust coverage of the %d generated pairs over %d sampled faults: %.1f%%\n",
		parallel.TestSet().Len(), n, cov*100)
}
