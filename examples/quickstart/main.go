// Quickstart: generate robust path delay fault tests for the ISCAS85 c17
// benchmark and print every fault, its classification and its test pattern.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/sensitize"
)

func main() {
	// 1. Pick a circuit.  bench.Get also understands "c432", "adder16", a
	//    parsed .bench file can be used instead (circuit.ParseBench).
	c := bench.C17()
	fmt.Println("circuit:", c)

	// 2. Enumerate the target faults.  c17 is tiny, so all 22 path delay
	//    faults (11 paths x 2 transitions) are targeted.
	faults := paths.EnumerateFaults(c, 0)
	fmt.Printf("targeting %d path delay faults (%s structural paths)\n\n",
		len(faults), paths.CountPaths(c).String())

	// 3. Run the bit-parallel generator with the default robust options:
	//    FPTPG first, APTPG for the hard faults, fault simulation after
	//    every 64 generated patterns.
	gen := core.New(c, core.DefaultOptions(sensitize.Robust))
	results := gen.Run(faults)

	// 4. Inspect the per-fault results and the generated test set.
	for _, r := range results {
		line := fmt.Sprintf("%-32s %-24s", r.Fault.Describe(c), fmt.Sprintf("%s (%s)", r.Status, r.Phase))
		if r.Status == core.Tested {
			line += "  test: " + r.Test.String()
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println("summary:", gen.Stats().String())
	fmt.Printf("test set (%d pairs):\n%s", gen.TestSet().Len(), gen.TestSet().String())
}
