// Quickstart: generate robust path delay fault tests for the ISCAS85 c17
// benchmark and print every fault, its classification and its test pattern,
// consuming the results as a stream while the generator works.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/atpg"
)

func main() {
	// 1. Pick a circuit.  atpg.Builtin also understands "c432", "adder16",
	//    ...; a .bench file on disk is loaded with atpg.LoadBench.
	c, err := atpg.Builtin("c17")
	if err != nil {
		panic(err)
	}
	fmt.Println("circuit:", c)

	// 2. Enumerate the target faults.  c17 is tiny, so all 22 path delay
	//    faults (11 paths x 2 transitions) are targeted.
	faults := atpg.AllFaults(c, 0)
	fmt.Printf("targeting %d path delay faults (%s structural paths)\n\n",
		len(faults), c.PathCount().String())

	// 3. Build the engine with the default robust options: FPTPG first,
	//    APTPG for the hard faults, fault simulation after every 64
	//    generated patterns.
	e, err := atpg.New(c, atpg.WithMode(atpg.Robust))
	if err != nil {
		panic(err)
	}

	// 4. Stream the per-fault results: each fault is printed the moment its
	//    classification is final.  (Engine.Run returns them as one slice in
	//    input order instead; breaking out of this loop would cancel the
	//    rest of the generation.)
	for r := range e.Stream(context.Background(), faults) {
		line := fmt.Sprintf("%-32s %-24s", c.Describe(r.Fault), fmt.Sprintf("%s (%s)", r.Status, r.Phase))
		if r.Status == atpg.Tested {
			line += "  test: " + r.Test.String()
		}
		fmt.Println(line)
	}
	// 5. Summarize.  Coverage.Fraction is the covered share of the targeted
	//    faults; Coverage.Efficiency is the paper's fault-efficiency metric,
	//    (1 - aborted/faults) * 100%.
	cov := e.Coverage()
	fmt.Println()
	fmt.Println("summary:", e.Stats().String())
	fmt.Printf("coverage: %.1f%%, efficiency: %.1f%%\n", cov.Fraction()*100, cov.Efficiency())
	fmt.Printf("test set (%d pairs):\n%s", e.Tests().Len(), e.Tests().String())
}
